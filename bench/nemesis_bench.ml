(* Nemesis artefact: a seeded adversity schedule — steady loss and
   duplication, transient partitions, gray links, a whole-DC crash —
   injected into a RUBiS run, with the failure detector's view, the
   per-cause message-drop counters and the end-to-end verdicts (PoR,
   convergence, no stuck strong transaction) printed as the run's
   summary. Everything derives from one seed and replays exactly. *)

module U = Unistore
module Rubis = Workload.Rubis
module Network = Net.Network

let seed = 2021

let run () =
  Common.section
    "Nemesis — lossy links, partitions, a DC crash, and the Ω detector";
  let topo = Net.Topology.n_dcs 5 in
  let horizon_us = 16_000_000 in
  let cfg =
    U.Config.default ~topo ~partitions:3 ~f:2 ~conflict:Rubis.conflict_spec
      ~seed ~link_faults:Net.Faults.default_spec ~record_history:true
      ~trace_enabled:true ()
  in
  let sys = U.System.create cfg in
  Common.track sys;
  let spec =
    {
      Rubis.default_spec with
      n_items = 300;
      n_users = 1_000;
      n_regions = 10;
      n_categories = 5;
      think_time_us = 50_000;
    }
  in
  Rubis.populate sys spec;
  let sched =
    U.Nemesis.random_schedule ~seed ~dcs:(Net.Topology.dcs topo) ~horizon_us
      ()
  in
  Common.note "schedule (seed %d):" seed;
  List.iter (fun s -> Common.note "  %a" U.Nemesis.pp_step s) sched;
  U.Nemesis.inject sys sched;
  let stop () = U.System.now sys >= horizon_us - 4_000_000 in
  for i = 0 to 7 do
    ignore
      (U.System.spawn_client sys
         ~dc:(i mod Net.Topology.dcs topo)
         (fun c -> Rubis.client_body spec ~stop c))
  done;
  U.System.run sys ~until:horizon_us;
  let det = U.System.detector sys in
  let net = U.System.network sys in
  let h = U.System.history sys in
  Common.note "detector timeline:";
  List.iter
    (fun (e : Sim.Trace.event) ->
      if e.ev_source = "fd" then
        Common.note "  t=%8dus  %s" e.ev_time e.ev_detail)
    (Sim.Trace.events (U.System.trace sys));
  Common.note "committed: %d (%d strong), aborted strong: %d"
    (U.History.committed_total h)
    (U.History.committed_strong h)
    (U.History.aborted_strong h);
  Common.note
    "drops: %d crash / %d loss / %d partition; %d retransmissions, %d \
     duplicates suppressed"
    (Network.dropped_crash net) (Network.dropped_loss net)
    (Network.dropped_partition net)
    (Network.retransmissions net)
    (Network.duplicates_suppressed net);
  Common.note "suspicions: %d (%d false), rehabilitations: %d"
    (U.Detector.suspicions det)
    (U.Detector.false_suspicions det)
    (U.Detector.restorations det);
  Common.note "strong transactions still pending: %d"
    (U.System.pending_strong sys);
  let result =
    U.Checker.check
      ~preloads:(U.History.preloads h)
      ~unacked:(U.History.unacked_writers h)
      cfg (U.History.txns h)
  in
  if U.Checker.ok result then Common.note "PoR: %a" U.Checker.pp_result result
  else Common.note "PoR FAILED: %a" U.Checker.pp_result result;
  let divergences = U.System.check_convergence sys in
  (match divergences with
  | [] -> Common.note "correct DCs converged after the final heal"
  | errs -> List.iter (Common.note "DIVERGENCE: %s") errs);
  Common.emit_artifact ~name:"nemesis"
    (Sim.Json.Obj
       [
         ("report", U.Report.of_system ~name:"nemesis" sys);
         ( "drops",
           Sim.Json.Obj
             [
               ("crash", Sim.Json.Int (Network.dropped_crash net));
               ("loss", Sim.Json.Int (Network.dropped_loss net));
               ("partition", Sim.Json.Int (Network.dropped_partition net));
             ] );
         ("retransmissions", Sim.Json.Int (Network.retransmissions net));
         ( "duplicates_suppressed",
           Sim.Json.Int (Network.duplicates_suppressed net) );
         ( "detector",
           Sim.Json.Obj
             [
               ("suspicions", Sim.Json.Int (U.Detector.suspicions det));
               ( "false_suspicions",
                 Sim.Json.Int (U.Detector.false_suspicions det) );
               ("restorations", Sim.Json.Int (U.Detector.restorations det));
             ] );
         ("pending_strong", Sim.Json.Int (U.System.pending_strong sys));
         ("por_holds", Sim.Json.Bool (U.Checker.ok result));
         ("converged", Sim.Json.Bool (divergences = []));
       ]);
  Common.emit_trace ~name:"nemesis" (U.System.trace sys)

(* Recovery artefact: a scripted whole-DC crash followed by a recovery
   mid-run. Shows the throughput dip while the DC is down (its clients
   fail over), the rejoin catch-up cost (snapshot + log-replay bytes,
   catch-up latency) and the end-to-end verdicts: the recovered DC
   converges to the same store as the DCs that never crashed. *)
let recovery_seed = 4242

let run_recovery () =
  Common.section "Recovery — whole-DC crash, rejoin, client failover";
  let topo = Net.Topology.n_dcs 3 in
  let horizon_us = 16_000_000 in
  let crash_at = 4_000_000 and recover_at = 8_000_000 in
  let cfg =
    U.Config.default ~topo ~partitions:3 ~f:1 ~conflict:Rubis.conflict_spec
      ~seed:recovery_seed ~client_failover_us:400_000 ~record_history:true ()
  in
  let sys = U.System.create cfg in
  Common.track sys;
  let spec =
    {
      Rubis.default_spec with
      n_items = 300;
      n_users = 1_000;
      n_regions = 10;
      n_categories = 5;
      think_time_us = 50_000;
    }
  in
  Rubis.populate sys spec;
  let sched =
    [
      { U.Nemesis.at_us = crash_at; ev = U.Nemesis.Crash_dc 2 };
      { U.Nemesis.at_us = recover_at; ev = U.Nemesis.Recover_dc 2 };
    ]
  in
  Common.note "schedule (scripted):";
  List.iter (fun s -> Common.note "  %a" U.Nemesis.pp_step s) sched;
  U.Nemesis.inject sys sched;
  let stop () = U.System.now sys >= horizon_us - 3_000_000 in
  for i = 0 to 8 do
    ignore
      (U.System.spawn_client sys
         ~dc:(i mod Net.Topology.dcs topo)
         (fun c -> Rubis.client_body spec ~stop c))
  done;
  (* per-second committed-transaction timeline: the crash dip and the
     post-recovery catch-up are visible in the deltas *)
  let eng = U.System.engine sys in
  let buckets = horizon_us / 1_000_000 in
  let cumulative = Array.make (buckets + 1) 0 in
  let committed () = U.History.committed_total (U.System.history sys) in
  for k = 1 to buckets do
    Sim.Engine.schedule_at eng ~time:(k * 1_000_000) (fun () ->
        cumulative.(k) <- committed ())
  done;
  U.System.run sys ~until:horizon_us;
  cumulative.(buckets) <- committed ();
  let per_second =
    List.init buckets (fun k -> cumulative.(k + 1) - cumulative.(k))
  in
  let h = U.System.history sys in
  Common.note "committed per second: %s"
    (String.concat " " (List.map string_of_int per_second));
  Common.note "committed: %d (%d strong), pending strong: %d"
    (U.History.committed_total h)
    (U.History.committed_strong h)
    (U.System.pending_strong sys);
  Common.note "dc2 still syncing: %b" (U.System.dc_syncing sys 2);
  let result =
    U.Checker.check
      ~preloads:(U.History.preloads h)
      ~unacked:(U.History.unacked_writers h)
      cfg (U.History.txns h)
  in
  if U.Checker.ok result then Common.note "PoR: %a" U.Checker.pp_result result
  else Common.note "PoR FAILED: %a" U.Checker.pp_result result;
  let divergences = U.System.check_convergence sys in
  (match divergences with
  | [] -> Common.note "all DCs (including the recovered one) converged"
  | errs -> List.iter (Common.note "DIVERGENCE: %s") errs);
  Common.emit_artifact ~name:"recovery"
    (Sim.Json.Obj
       [
         ("report", U.Report.of_system ~name:"recovery" sys);
         ("crash_at_us", Sim.Json.Int crash_at);
         ("recover_at_us", Sim.Json.Int recover_at);
         ( "committed_per_second",
           Sim.Json.List (List.map (fun n -> Sim.Json.Int n) per_second) );
         ("pending_strong", Sim.Json.Int (U.System.pending_strong sys));
         ("dc_syncing", Sim.Json.Bool (U.System.dc_syncing sys 2));
         ("por_holds", Sim.Json.Bool (U.Checker.ok result));
         ("converged", Sim.Json.Bool (divergences = []));
       ])

(* Combined-adversity artefact: a multi-seed soak where the nemesis aims
   partitions and gray links at the *recovery itself* — the recovering
   DC's sync peers are cut or degraded inside the crash→recover→heal
   window, so the rejoin's pull rounds race the very faults that used to
   stall them. Per seed the verdicts are: the rejoin completed before
   [Heal_all] + horizon/4 (no stuck dcs_syncing gauge), all correct DCs
   converged, and no strong transaction is left pending. *)
let adversity_base_seed = 7001
let adversity_seeds_wanted = 3

let run_adversity () =
  Common.section
    "Combined adversity — partitions and gray links during DC rejoin";
  let dcs = 3 in
  let topo = Net.Topology.n_dcs dcs in
  let horizon_us = 16_000_000 in
  let heal_at = 3 * horizon_us / 4 in
  let rejoin_deadline = heal_at + (horizon_us / 4) in
  let schedule_of seed =
    U.Nemesis.random_schedule ~seed ~dcs ~horizon_us ~max_crashes:1
      ~max_partitions:1 ~max_degrades:1 ~max_recoveries:1
      ~max_sync_partitions:1 ~max_sync_degrades:1 ()
  in
  (* deterministically scan for seeds whose schedule actually contains a
     crash/recover cycle (a seed may draw zero crashes) *)
  let recovery_of sched =
    List.find_map
      (fun { U.Nemesis.at_us; ev } ->
        match ev with U.Nemesis.Recover_dc dc -> Some (dc, at_us) | _ -> None)
      sched
  in
  let seeds =
    let rec scan seed acc =
      if List.length acc >= adversity_seeds_wanted then List.rev acc
      else
        let acc =
          match recovery_of (schedule_of seed) with
          | Some _ -> seed :: acc
          | None -> acc
        in
        scan (seed + 1) acc
    in
    scan adversity_base_seed []
  in
  let run_seed seed =
    let cfg =
      U.Config.default ~topo ~partitions:3 ~f:1 ~conflict:Rubis.conflict_spec
        ~seed ~link_faults:Net.Faults.default_spec
        ~client_failover_us:400_000 ~record_history:true ()
    in
    let sys = U.System.create cfg in
  Common.track sys;
    let spec =
      {
        Rubis.default_spec with
        n_items = 200;
        n_users = 500;
        n_regions = 10;
        n_categories = 5;
        think_time_us = 50_000;
      }
    in
    Rubis.populate sys spec;
    let sched = schedule_of seed in
    let rec_dc, recover_at =
      match recovery_of sched with Some p -> p | None -> assert false
    in
    Common.note "seed %d schedule:" seed;
    List.iter (fun s -> Common.note "  %a" U.Nemesis.pp_step s) sched;
    U.Nemesis.inject sys sched;
    (* the workload stops at the final heal: the last quarter of the run
       is settle time, so the liveness verdicts (pending strong drains,
       stores converge) measure the protocol, not a still-hot workload *)
    let stop () = U.System.now sys >= heal_at in
    for i = 0 to 5 do
      ignore
        (U.System.spawn_client sys ~dc:(i mod dcs) (fun c ->
             Rubis.client_body spec ~stop c))
    done;
    (* probe the rejoin exactly at the liveness deadline *)
    let rejoined_in_time = ref false in
    Sim.Engine.schedule_at (U.System.engine sys)
      ~time:(min rejoin_deadline (horizon_us - 1))
      (fun () -> rejoined_in_time := not (U.System.dc_syncing sys rec_dc));
    U.System.run sys ~until:horizon_us;
    let gauge_left =
      Sim.Metrics.gauge_value
        (Sim.Metrics.gauge (U.System.metrics sys) "dcs_syncing")
    in
    let divergences = U.System.check_convergence sys in
    let pending = U.System.pending_strong sys in
    let verdict =
      !rejoined_in_time && gauge_left = 0.0 && divergences = [] && pending = 0
    in
    Common.note
      "seed %d: recover dc%d at %dus; rejoined by deadline: %b, dcs_syncing \
       gauge: %.0f, converged: %b, pending strong: %d -> %s"
      seed rec_dc recover_at !rejoined_in_time gauge_left (divergences = [])
      pending
      (if verdict then "PASS" else "FAIL");
    List.iter (Common.note "DIVERGENCE: %s") divergences;
    ( verdict,
      Sim.Json.Obj
        [
          ("seed", Sim.Json.Int seed);
          ("recovered_dc", Sim.Json.Int rec_dc);
          ("recover_at_us", Sim.Json.Int recover_at);
          ("rejoin_deadline_us", Sim.Json.Int rejoin_deadline);
          ("rejoined_by_deadline", Sim.Json.Bool !rejoined_in_time);
          ("dcs_syncing_gauge", Sim.Json.Float gauge_left);
          ("converged", Sim.Json.Bool (divergences = []));
          ("pending_strong", Sim.Json.Int pending);
          ( "sync_peer_drops",
            Sim.Json.Int
              (Sim.Metrics.counter_value
                 (Sim.Metrics.counter (U.System.metrics sys)
                    "sync_peer_drops_total")) );
          ("verdict", Sim.Json.Bool verdict);
        ] )
  in
  let results = List.map run_seed seeds in
  let all_pass = List.for_all fst results in
  Common.note "combined adversity: %d/%d seeds pass"
    (List.length (List.filter fst results))
    (List.length results);
  Common.emit_artifact ~name:"adversity"
    (Sim.Json.Obj
       [
         ("horizon_us", Sim.Json.Int horizon_us);
         ("heal_all_at_us", Sim.Json.Int heal_at);
         ("seeds", Sim.Json.List (List.map snd results));
         ("all_pass", Sim.Json.Bool all_pass);
       ])
