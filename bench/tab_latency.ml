(* §8.1 latency table: per-transaction-type latencies on RUBiS below
   saturation, strong latency per client site, average latency of
   UNISTORE vs STRONG, abort rates of UNISTORE vs REDBLUE.

   Paper numbers: causal avg 1.2 ms; strong avg 73.9 ms (65.4 ms at the
   leader site Virginia, 93.2 ms at Frankfurt); UNISTORE avg 16.5 ms vs
   STRONG 80.4 ms (3.7x); abort rates 0.027% (UNISTORE) vs 0.12%
   (REDBLUE). *)

module U = Unistore

let partitions = 16
let clients = 600
let think_time_us = 100_000  (* moderate load, well below saturation *)

let pct_or_zero s p =
  match Sim.Stats.percentile_opt s p with Some v -> v /. 1000.0 | None -> 0.0

let mean_ms = Common.mean_ms

let run () =
  Common.section "Table (§8.1) — RUBiS latency by transaction type";
  let topo = Net.Topology.three_dcs () in
  let uni =
    Common.run_rubis ~mode:U.Config.Unistore ~think_time_us ~topo ~partitions
      ~clients ~warmup_us:500_000 ~window_us:2_000_000 ()
  in
  let h = uni.Common.r_history in
  Fmt.pr "  UNISTORE, per transaction type (ms):@.";
  Fmt.pr "    %-24s %8s %8s %8s %8s@." "type" "mean" "p50" "p90" "p99";
  List.iter
    (fun label ->
      match U.History.latency_by_label h label with
      | Some s when Sim.Stats.count s > 0 ->
          Fmt.pr "    %-24s %8.2f %8.2f %8.2f %8.2f@." label (mean_ms s)
            (pct_or_zero s 50.0) (pct_or_zero s 90.0) (pct_or_zero s 99.0)
      | _ -> ())
    (U.History.labels h);
  Common.hr ();
  Fmt.pr "  causal transactions: mean %.2f ms   (paper: 1.2 ms)@."
    (mean_ms (U.History.latency_causal h));
  Fmt.pr "  strong transactions: mean %.2f ms   (paper: 73.9 ms)@."
    (mean_ms (U.History.latency_strong h));
  let site dc name paper =
    match U.History.latency_strong_by_dc h dc with
    | Some s when Sim.Stats.count s > 0 ->
        Fmt.pr "    strong at %-10s %7.1f ms   (paper: %s)@." name
          (mean_ms s) paper
    | _ -> ()
  in
  site 0 "virginia" "65.4 ms (leader site)";
  site 1 "california" "—";
  site 2 "frankfurt" "93.2 ms (furthest from leader)";
  Common.hr ();
  (* Where strong latency goes: per-phase breakdown from the lifecycle
     instrumentation, plus how far uniformity lags behind delivery. *)
  Fmt.pr "%a" U.Report.pp_phase_breakdown uni.Common.r_sys;
  Fmt.pr "%a" U.Report.pp_uniformity_lag uni.Common.r_sys;
  Common.hr ();
  let strong_sys =
    Common.run_rubis ~mode:U.Config.Strong ~think_time_us ~topo ~partitions
      ~clients ~warmup_us:500_000 ~window_us:2_000_000 ()
  in
  let redblue =
    Common.run_rubis ~mode:U.Config.Red_blue ~think_time_us ~topo ~partitions
      ~clients ~warmup_us:500_000 ~window_us:2_000_000 ()
  in
  let uni_avg = uni.Common.r_lat_all_ms
  and strong_avg = strong_sys.Common.r_lat_all_ms in
  Fmt.pr "  overall average latency: UNISTORE %.1f ms, STRONG %.1f ms — %.1fx \
          (paper: 16.5 vs 80.4 ms, 3.7x)@."
    uni_avg strong_avg
    (if uni_avg > 0.0 then strong_avg /. uni_avg else 0.0);
  Fmt.pr "  abort rates: UNISTORE %.3f%%, REDBLUE %.3f%% (paper: 0.027%% vs \
          0.12%%)@."
    uni.Common.r_abort_pct redblue.Common.r_abort_pct;
  let by_label =
    List.filter_map
      (fun label ->
        match U.History.latency_by_label h label with
        | Some s when Sim.Stats.count s > 0 ->
            Some (Sim.Json.Obj
                [
                  ("label", Sim.Json.String label);
                  ("latency", U.Report.latency_json s);
                ])
        | _ -> None)
      (U.History.labels h)
  in
  Common.emit_artifact ~name:"tab_latency"
    (Sim.Json.Obj
       [
         ("unistore", U.Report.of_system ~name:"tab-latency" uni.Common.r_sys);
         ("by_label", Sim.Json.List by_label);
         ("strong", Common.result_json strong_sys);
         ("redblue", Common.result_json redblue);
       ])
