(* Figure 4 (§8.2): peak-throughput scalability with the number of
   machines per data center (8 partitions per machine), sweeping the
   ratio of strong transactions.

   Top plot: uniform data access (very low contention).
   Bottom plot: contention — 20% of strong transactions aim at one
   designated partition.

   Microbenchmark: 100% update transactions, 3 items each, closed loop.
   Paper shapes: near-linear scaling (~9.8% below optimal without
   contention, ~17.2% with), and a ~25.7% average throughput drop with
   10% strong transactions. *)

module U = Unistore

let machine_counts = [| 2; 4; 8 |]
let partitions_per_machine = 8
let strong_ratios = [| 0.0; 0.1; 0.5; 1.0 |]

let clients_for ~partitions ~ratio =
  (* enough closed-loop clients to saturate, linear in deployment size so
     the scaling comparison is fair; strong transactions have ~100 ms
     latency, so strong-heavy points need far more clients *)
  partitions * (70 + int_of_float (420.0 *. ratio))

let run_point ~contended ~partitions ~ratio =
  let spec =
    {
      (Workload.Micro.default_spec ~partitions) with
      update_ratio = 1.0;
      strong_ratio = ratio;
      hot_partition = (if contended then Some (0, 0.2) else None);
    }
  in
  Common.run_micro ~mode:U.Config.Unistore ~topo:(Net.Topology.three_dcs ())
    ~partitions
    ~clients:(clients_for ~partitions ~ratio)
    ~spec ~warmup_us:300_000 ~window_us:700_000 ()

let run_variant ?artifact ~contended title =
  Common.section title;
  Fmt.pr "  %-10s" "machines";
  Array.iter (fun r -> Fmt.pr "  strong=%3.0f%%" (100.0 *. r)) strong_ratios;
  Fmt.pr "@.";
  let table = Hashtbl.create 16 in
  Array.iter
    (fun machines ->
      let partitions = machines * partitions_per_machine in
      Fmt.pr "  %-10d" machines;
      Array.iter
        (fun ratio ->
          let r = run_point ~contended ~partitions ~ratio in
          Hashtbl.replace table (machines, ratio) r.Common.r_throughput;
          Fmt.pr "  %11.0f" r.Common.r_throughput)
        strong_ratios;
      Fmt.pr "@.")
    machine_counts;
  (match artifact with
  | None -> ()
  | Some name ->
      let points =
        Array.to_list machine_counts
        |> List.concat_map (fun machines ->
               Array.to_list strong_ratios
               |> List.map (fun ratio ->
                      Sim.Json.Obj
                        [
                          ("machines", Sim.Json.Int machines);
                          ("strong_ratio", Sim.Json.Float ratio);
                          ( "throughput_tx_s",
                            Sim.Json.Float
                              (Hashtbl.find table (machines, ratio)) );
                        ]))
      in
      Common.emit_artifact ~name
        (Sim.Json.Obj
           [
             ("contended", Sim.Json.Bool contended);
             ("points", Sim.Json.List points);
           ]));
  table

let scaling_deviation table ~ratio =
  (* deviation from optimal (linear in machines) at the largest size *)
  let small = Hashtbl.find table (machine_counts.(0), ratio) in
  let large =
    Hashtbl.find table (machine_counts.(Array.length machine_counts - 1), ratio)
  in
  let factor =
    float_of_int machine_counts.(Array.length machine_counts - 1)
    /. float_of_int machine_counts.(0)
  in
  let optimal = small *. factor in
  100.0 *. (1.0 -. (large /. optimal))

let run () =
  let top =
    run_variant ~artifact:"fig4a" ~contended:false
      "Figure 4 (top) — scalability, uniform access (peak tx/s)"
  in
  Fmt.pr "  deviation from linear scaling at 0%% strong: %.1f%% (paper: \
          ~9.8%%)@."
    (scaling_deviation top ~ratio:0.0);
  let drop =
    (* average throughput drop of 10% strong vs 0% strong *)
    let total = ref 0.0 and n = ref 0 in
    Array.iter
      (fun machines ->
        let t0 = Hashtbl.find top (machines, 0.0) in
        let t10 = Hashtbl.find top (machines, 0.1) in
        if t0 > 0.0 then begin
          total := !total +. (100.0 *. (1.0 -. (t10 /. t0)));
          incr n
        end)
      machine_counts;
    if !n = 0 then 0.0 else !total /. float_of_int !n
  in
  Fmt.pr "  average drop with 10%% strong txns: %.1f%% (paper: ~25.7%%)@."
    drop;
  let bottom =
    run_variant ~artifact:"fig4b" ~contended:true
      "Figure 4 (bottom) — scalability under contention (20% of strong txns \
       hit one partition)"
  in
  Fmt.pr "  deviation from linear scaling at 10%% strong: %.1f%% (paper: \
          ~17.2%% under contention vs ~9.8%% without)@."
    (scaling_deviation bottom ~ratio:0.1);
  Common.emit_artifact ~name:"fig4"
    (Sim.Json.Obj
       [
         ( "uniform_deviation_pct",
           Sim.Json.Float (scaling_deviation top ~ratio:0.0) );
         ("strong10_drop_pct", Sim.Json.Float drop);
         ( "contended_deviation_pct",
           Sim.Json.Float (scaling_deviation bottom ~ratio:0.1) );
       ])
