(* Benchmark harness entry point.

   `dune exec bench/main.exe` regenerates every table and figure of the
   paper's evaluation (§8) and runs the Bechamel microbenchmarks;
   individual artefacts can be selected by name:

     main.exe [--json <dir>] [fig3|tab-latency|fig4a|fig4b|fig5|fig6|scenarios|nemesis|micro]...

   `--json <dir>` additionally writes one machine-readable
   BENCH_<name>.json per artefact (plus TRACE_<name>.json Chrome-trace
   exports where a run records a trace) into <dir>. *)

let artefacts =
  [
    ("fig3", fun () -> Common.timed "fig3" Fig3.run);
    ("tab-latency", fun () -> Common.timed "tab-latency" Tab_latency.run);
    ( "fig4a",
      fun () ->
        Common.timed "fig4a" (fun () ->
            ignore
              (Fig4.run_variant ~artifact:"fig4a" ~contended:false
                 "Figure 4 (top) — scalability, uniform access (peak tx/s)"))
    );
    ( "fig4b",
      fun () ->
        Common.timed "fig4b" (fun () ->
            ignore
              (Fig4.run_variant ~artifact:"fig4b" ~contended:true
                 "Figure 4 (bottom) — scalability under contention")) );
    ("fig4", fun () -> Common.timed "fig4" Fig4.run);
    ("fig5", fun () -> Common.timed "fig5" Fig5.run);
    ("fig6", fun () -> Common.timed "fig6" Fig6.run);
    ("scenarios", fun () -> Common.timed "scenarios" Scenarios.run);
    ("nemesis", fun () -> Common.timed "nemesis" Nemesis_bench.run);
    ("recovery", fun () -> Common.timed "recovery" Nemesis_bench.run_recovery);
    ( "adversity",
      fun () -> Common.timed "adversity" Nemesis_bench.run_adversity );
    ("ablations", fun () -> Common.timed "ablations" Ablations.run);
    ("overload", fun () -> Common.timed "overload" Overload.run);
    ("rolling", fun () -> Common.timed "rolling" Rolling.run);
    ("profile", fun () -> Profile.run ());
    ("micro", fun () -> Common.timed "micro" Microbench.run);
  ]

let default_sequence =
  [ "scenarios"; "nemesis"; "recovery"; "adversity"; "overload"; "rolling";
    "profile"; "tab-latency"; "fig6"; "fig5"; "ablations"; "micro"; "fig3";
    "fig4" ]

(* Strip [--json <dir>] (setting [Common.json_dir]) and return the
   remaining artefact names. *)
let rec parse_args = function
  | [] -> []
  | "--json" :: dir :: rest ->
      Common.json_dir := Some dir;
      parse_args rest
  | [ "--json" ] ->
      Fmt.epr "--json requires a directory argument@.";
      exit 1
  | arg :: rest -> arg :: parse_args rest

let () =
  let requested =
    match parse_args (List.tl (Array.to_list Sys.argv)) with
    | [] -> default_sequence
    | args -> args
  in
  Fmt.pr
    "UniStore evaluation harness (simulated EC2 deployment; see \
     EXPERIMENTS.md for scale notes)@.";
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name artefacts with
      | Some run -> run ()
      | None ->
          Fmt.epr "unknown artefact %S; available: %s@." name
            (String.concat ", " (List.map fst artefacts));
          exit 1)
    requested;
  Fmt.pr "@.total wall time: %.1fs@." (Unix.gettimeofday () -. t0)
